// Package server implements the streaming servers whose behaviours the
// paper contrasts (§2.2, §4):
//
//   - Paced: the IBM VideoCharger™ profile — small application
//     messages, transmission of each frame paced across the frame
//     interval. Used for the QBone experiments.
//   - Burst: the Microsoft Netshow Theater™ / 2netfx ThunderCastIP™
//     profile — application datagrams up to 16280 bytes that the IP
//     stack fragments into back-to-back 1500-byte packets, plus the
//     naive rate-adaptation loop that misreads policing losses and
//     spirals (the paper found these servers unusable behind an EF
//     policer and excluded them from the main experiments).
//   - WMT: the Windows Media™ profile — capped-VBR content, reduced
//     message sizes that fit single packets, streamed over UDP (bursty)
//     or over TCP with server-side stream thinning. Used for the local
//     testbed experiments.
package server

import (
	"repro/internal/client"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/units"
	"repro/internal/video"
)

// UDPHeader is the IP+UDP overhead added to each application message.
const UDPHeader = 28

// MaxUDPPayload is the payload that fits one Ethernet MTU.
const MaxUDPPayload = units.EthernetMTU - UDPHeader

// nextID stamps server packets from the process-wide counter shared
// with the traffic sources (see packet.NewID): one counter means a
// server packet and a source packet never carry the same id, which is
// what keeps canonicalized trace captures run-order independent.
func nextID() uint64 { return packet.NewID() }

// Paced streams an encoding over UDP, sending each frame's packets
// evenly spaced across a fraction of the frame interval — the
// transmission pacing that made the VideoCharger usable behind an EF
// policer.
type Paced struct {
	Sim  *sim.Simulator
	Enc  *video.Encoding
	Flow packet.FlowID
	Next packet.Handler
	Pool *packet.Pool // packet arena; nil falls back to the heap

	// MsgSize is the application message payload per packet; the
	// VideoCharger "allows smaller message sizes" (§2.2). Default:
	// one MTU's worth.
	MsgSize int
	// PaceSpread is the fraction of the frame interval across which a
	// frame's packets are spread (default 0.95). Values above 1 panic
	// in Start: the send ring relies on a frame's fragments finishing
	// before the next frame starts, which holds for any spread ≤ 1
	// (the last fragment leaves at spread·(frags-1)/frags of the
	// interval, strictly inside it).
	PaceSpread float64

	Sent      int
	SentBytes int64

	// Pending fragment sends, delivery order. Fragment send times are
	// strictly increasing (within a frame by construction, across
	// frames because a frame's spread never reaches the next frame
	// time), so a FIFO ring plus one Timer replaces the per-fragment
	// closures.
	pending packet.Ring
}

// pacedSendTimer is the pointer-conversion Timer of a Paced server.
type pacedSendTimer Paced

// Fire transmits the oldest pending fragment.
func (s *pacedSendTimer) Fire(units.Time) { (*Paced)(s).sendHead() }

// Start schedules the whole clip's transmission.
func (s *Paced) Start() {
	if s.MsgSize <= 0 {
		s.MsgSize = MaxUDPPayload
	}
	if s.PaceSpread <= 0 {
		s.PaceSpread = 0.95
	}
	if s.PaceSpread > 1 {
		panic("server: Paced.PaceSpread > 1 would overlap adjacent frames' sends")
	}
	interval := video.FrameInterval()
	for i := range s.Enc.Frames {
		i := i
		s.Sim.At(s.Sim.Now()+units.Time(int64(i))*interval, func() { s.sendFrame(i) })
	}
}

func (s *Paced) sendFrame(i int) {
	size := s.Enc.Frames[i].Size
	frags := (size + s.MsgSize - 1) / s.MsgSize
	if frags == 0 {
		frags = 1
	}
	interval := video.FrameInterval()
	spread := units.Time(float64(interval) * s.PaceSpread)
	for j := 0; j < frags; j++ {
		payload := s.MsgSize
		if j == frags-1 {
			payload = size - (frags-1)*s.MsgSize
		}
		p := s.Pool.Get()
		p.ID, p.Flow, p.Proto = nextID(), s.Flow, packet.UDP
		p.Size = payload + UDPHeader
		p.FrameSeq, p.FragIndex, p.FragCount = i, j, frags
		var at units.Time
		if frags > 1 {
			at = units.Time(int64(spread) * int64(j) / int64(frags))
		}
		s.pending.Push(p)
		s.Sim.AfterTimer(at, (*pacedSendTimer)(s))
	}
}

// sendHead transmits the ring head at its scheduled instant.
func (s *Paced) sendHead() {
	p := s.pending.Pop()
	p.SentAt = s.Sim.Now()
	s.Sent++
	s.SentBytes += int64(p.Size)
	s.Next.Handle(p)
}

// MaxDatagram is the largest application datagram the bursty servers
// generate (§2.2: "up to 16280 bytes long").
const MaxDatagram = 16280

// Burst streams an encoding the way the large-datagram servers did:
// each frame becomes one application datagram (up to MaxDatagram)
// whose IP fragments leave the host back-to-back at the access-link
// rate. Its Adaptation loop reproduces the §4 death spiral: policing
// losses with low delivery delay are read as "more bandwidth needed",
// the rate multiplier rises, losses get worse, and the server
// eventually collapses to a minimal rate and starts over.
type Burst struct {
	Sim      *sim.Simulator
	Enc      *video.Encoding
	Flow     packet.FlowID
	Next     packet.Handler
	Pool     *packet.Pool  // packet arena; nil falls back to the heap
	HostRate units.BitRate // NIC serialization rate; default 100 Mbps

	// Adaptation configuration.
	Adapt          bool
	FeedbackEvery  units.Time // default 1 s
	lossProbe      func() (lossFrac float64, avgDelay units.Time)
	rateMultiplier float64

	Sent        int
	SentBytes   int64
	Multipliers []float64 // rate multiplier history, one per feedback tick

	frame int
}

// SetFeedback wires the client-side probe the adaptation loop polls.
func (b *Burst) SetFeedback(probe func() (float64, units.Time)) { b.lossProbe = probe }

// Start schedules the transmission.
func (b *Burst) Start() {
	if b.HostRate <= 0 {
		b.HostRate = 100 * units.Mbps
	}
	if b.FeedbackEvery <= 0 {
		b.FeedbackEvery = units.Second
	}
	b.rateMultiplier = 1
	interval := video.FrameInterval()
	for i := range b.Enc.Frames {
		i := i
		b.Sim.At(b.Sim.Now()+units.Time(int64(i))*interval, func() { b.sendFrame(i) })
	}
	if b.Adapt && b.lossProbe != nil {
		b.Sim.After(b.FeedbackEvery, b.adaptTick)
	}
}

func (b *Burst) adaptTick() {
	loss, delay := b.lossProbe()
	switch {
	case loss > 0.35:
		// Catastrophic: back way off, then start climbing again.
		b.rateMultiplier = 0.3
	case loss > 0.005 && delay < 50*units.Millisecond:
		// Losses but fast delivery: the EF guarantee confuses the
		// estimator into believing bandwidth is plentiful, so it
		// *raises* the rate to "make up for the losses".
		b.rateMultiplier *= 1.25
		if b.rateMultiplier > 2.5 {
			b.rateMultiplier = 2.5
		}
	case loss == 0:
		// Creep back toward nominal.
		b.rateMultiplier = 0.8*b.rateMultiplier + 0.2
	}
	b.Multipliers = append(b.Multipliers, b.rateMultiplier)
	b.Sim.After(b.FeedbackEvery, b.adaptTick)
}

func (b *Burst) sendFrame(i int) {
	size := int(float64(b.Enc.Frames[i].Size) * b.rateMultiplier)
	if size < 200 {
		size = 200
	}
	// Split the frame into application datagrams; each datagram is
	// fragmented by the IP stack into MTU-sized packets that leave
	// back-to-back at the host NIC rate. One lost fragment loses the
	// datagram, and hence the frame.
	frags := 0
	remaining := size
	for remaining > 0 {
		dg := remaining
		if dg > MaxDatagram {
			dg = MaxDatagram
		}
		frags += (dg + MaxUDPPayload - 1) / MaxUDPPayload
		remaining -= dg
	}
	if frags == 0 {
		frags = 1
	}
	var at units.Time
	sent := 0
	remaining = size
	for remaining > 0 {
		payload := remaining
		if payload > MaxUDPPayload {
			payload = MaxUDPPayload
		}
		p := b.Pool.Get()
		p.ID, p.Flow, p.Proto = nextID(), b.Flow, packet.UDP
		p.Size = payload + UDPHeader
		p.FrameSeq, p.FragIndex, p.FragCount = i, sent, frags
		b.Sim.After(at, func() {
			p.SentAt = b.Sim.Now()
			b.Sent++
			b.SentBytes += int64(p.Size)
			b.Next.Handle(p)
		})
		at += b.HostRate.TxTime(p.Size)
		sent++
		remaining -= payload
	}
	b.frame = i
}

// WMTUDP streams a capped-VBR encoding over UDP with reduced message
// sizes (each message fits one packet), but sends each frame's packets
// back-to-back at the host rate — the burstiness that made local UDP
// streaming "too bursty to allow meaningful experimentation" (§4.2).
type WMTUDP struct {
	Sim      *sim.Simulator
	Enc      *video.Encoding
	Flow     packet.FlowID
	Next     packet.Handler
	Pool     *packet.Pool  // packet arena; nil falls back to the heap
	HostRate units.BitRate // default 10 Mbps Ethernet

	Sent      int
	SentBytes int64
}

// Start schedules the transmission.
func (s *WMTUDP) Start() {
	if s.HostRate <= 0 {
		s.HostRate = 10 * units.Mbps
	}
	interval := video.FrameInterval()
	for i := range s.Enc.Frames {
		i := i
		s.Sim.At(s.Sim.Now()+units.Time(int64(i))*interval, func() { s.sendFrame(i) })
	}
}

func (s *WMTUDP) sendFrame(i int) {
	size := s.Enc.Frames[i].Size
	frags := (size + MaxUDPPayload - 1) / MaxUDPPayload
	if frags == 0 {
		frags = 1
	}
	var at units.Time
	for j := 0; j < frags; j++ {
		payload := MaxUDPPayload
		if j == frags-1 {
			payload = size - (frags-1)*MaxUDPPayload
		}
		p := s.Pool.Get()
		p.ID, p.Flow, p.Proto = nextID(), s.Flow, packet.UDP
		p.Size = payload + UDPHeader
		p.FrameSeq, p.FragIndex, p.FragCount = i, j, frags
		s.Sim.After(at, func() {
			p.SentAt = s.Sim.Now()
			s.Sent++
			s.SentBytes += int64(p.Size)
			s.Next.Handle(p)
		})
		at += s.HostRate.TxTime(p.Size)
	}
}

// WMTTCP streams a capped-VBR encoding over the simulated TCP
// connection, with server-side stream thinning: when the unsent
// backlog exceeds ThinningBacklog (the connection cannot sustain the
// encoding rate), frames are skipped instead of queued, which is how
// the real server kept a live stream live. Thinned frames are the
// "lost frames" of the TCP experiments.
type WMTTCP struct {
	Sim    *sim.Simulator
	Enc    *video.Encoding
	Sender *tcpsim.Sender
	Asm    *client.StreamAssembler

	// ThinningBacklog in bytes of queued-but-unsent data above which
	// frames are dropped. A streaming server must stay "live", so the
	// default is only half a second of content at the encoding cap —
	// once the connection falls further behind than that, frames are
	// skipped rather than queued.
	ThinningBacklog int64

	FramesSent    int
	FramesThinned int
}

// Start schedules the clip's frame writes.
func (s *WMTTCP) Start() {
	if s.ThinningBacklog == 0 {
		s.ThinningBacklog = int64(float64(s.Enc.Target) / 8 / 2)
	}
	interval := video.FrameInterval()
	for i := range s.Enc.Frames {
		i := i
		s.Sim.At(s.Sim.Now()+units.Time(int64(i))*interval, func() { s.writeFrame(i) })
	}
}

func (s *WMTTCP) writeFrame(i int) {
	if s.Sender.Backlog() > s.ThinningBacklog {
		s.FramesThinned++
		return
	}
	length := int64(s.Enc.Frames[i].Size + client.FrameHeaderSize)
	s.Asm.RegisterMessage(i, length)
	s.FramesSent++
	s.Sender.Write(length)
}

// Adaptive selects among multiple encodings of the same clip (the WMV
// multi-rate feature, §2.2/§3.3.2) based on client loss feedback, and
// streams the current selection frame by frame over UDP with pacing.
// It demonstrates "intelligent streaming": unlike Burst's estimator it
// treats loss as congestion and steps *down*.
type Adaptive struct {
	Sim  *sim.Simulator
	Encs []*video.Encoding // ordered low rate -> high rate
	Flow packet.FlowID
	Next packet.Handler
	Pool *packet.Pool // packet arena; nil falls back to the heap

	FeedbackEvery units.Time
	lossProbe     func() float64

	level    int
	Switches int
	Sent     int
	Levels   []int // level history per feedback tick
}

// SetFeedback wires the loss probe.
func (a *Adaptive) SetFeedback(probe func() float64) { a.lossProbe = probe }

// Level reports the current encoding level.
func (a *Adaptive) Level() int { return a.level }

// Start begins streaming at the highest level.
func (a *Adaptive) Start() {
	if a.FeedbackEvery <= 0 {
		a.FeedbackEvery = units.Second
	}
	a.level = len(a.Encs) - 1
	interval := video.FrameInterval()
	n := a.Encs[0].Clip.FrameCount()
	for i := 0; i < n; i++ {
		i := i
		a.Sim.At(a.Sim.Now()+units.Time(int64(i))*interval, func() { a.sendFrame(i) })
	}
	if a.lossProbe != nil {
		a.Sim.After(a.FeedbackEvery, a.adaptTick)
	}
}

func (a *Adaptive) adaptTick() {
	loss := a.lossProbe()
	switch {
	case loss > 0.02 && a.level > 0:
		a.level--
		a.Switches++
	case loss < 0.002 && a.level < len(a.Encs)-1:
		a.level++
		a.Switches++
	}
	a.Levels = append(a.Levels, a.level)
	a.Sim.After(a.FeedbackEvery, a.adaptTick)
}

func (a *Adaptive) sendFrame(i int) {
	enc := a.Encs[a.level]
	size := enc.Frames[i].Size
	frags := (size + MaxUDPPayload - 1) / MaxUDPPayload
	if frags == 0 {
		frags = 1
	}
	interval := video.FrameInterval()
	for j := 0; j < frags; j++ {
		payload := MaxUDPPayload
		if j == frags-1 {
			payload = size - (frags-1)*MaxUDPPayload
		}
		p := a.Pool.Get()
		p.ID, p.Flow, p.Proto = nextID(), a.Flow, packet.UDP
		p.Size = payload + UDPHeader
		p.FrameSeq, p.FragIndex, p.FragCount = i, j, frags
		at := units.Time(int64(interval) * 8 / 10 * int64(j) / int64(frags))
		a.Sim.After(at, func() {
			p.SentAt = a.Sim.Now()
			a.Sent++
			a.Next.Handle(p)
		})
	}
}
