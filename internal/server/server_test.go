package server

import (
	"testing"

	"repro/internal/client"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/units"
	"repro/internal/video"
)

// tiny returns a small deterministic encoding for fast server tests.
func tiny(t *testing.T, rate units.BitRate) *video.Encoding {
	t.Helper()
	clip := video.Lost()
	enc := video.EncodeCBR(clip, rate)
	return enc
}

func TestPacedSendsWholeClip(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	enc := tiny(t, 1.0e6)
	srv := &Paced{Sim: s, Enc: enc, Flow: 1, Next: &sink}
	srv.Start()
	s.SetHorizon(units.FromSeconds(80))
	s.Run()
	if srv.SentBytes < enc.TotalBytes() {
		t.Errorf("sent %d bytes < clip %d", srv.SentBytes, enc.TotalBytes())
	}
	// Every frame's fragments must cover its size.
	if sink.Count != srv.Sent {
		t.Errorf("sink %d != sent %d", sink.Count, srv.Sent)
	}
}

func TestPacedFragmentsAreMTUBounded(t *testing.T) {
	s := sim.New(1)
	maxSize := 0
	enc := tiny(t, 1.7e6)
	srv := &Paced{Sim: s, Enc: enc, Flow: 1,
		Next: packet.HandlerFunc(func(p *packet.Packet) {
			if p.Size > maxSize {
				maxSize = p.Size
			}
			if p.FragCount <= 0 || p.FragIndex >= p.FragCount {
				t.Fatalf("bad fragment indexing: %v", p)
			}
		})}
	srv.Start()
	s.SetHorizon(units.FromSeconds(5))
	s.Run()
	if maxSize > units.EthernetMTU {
		t.Errorf("fragment %d exceeds MTU", maxSize)
	}
}

func TestPacedSpreadsFramePackets(t *testing.T) {
	s := sim.New(1)
	var times []units.Time
	enc := tiny(t, 1.7e6)
	srv := &Paced{Sim: s, Enc: enc, Flow: 1,
		Next: packet.HandlerFunc(func(p *packet.Packet) {
			if p.FrameSeq == 0 {
				times = append(times, s.Now())
			}
		})}
	srv.Start()
	s.SetHorizon(units.FromSeconds(1))
	s.Run()
	if len(times) < 2 {
		t.Skip("frame 0 fits one packet")
	}
	span := times[len(times)-1] - times[0]
	if span < 10*units.Millisecond {
		t.Errorf("frame packets span only %v — not paced", span)
	}
}

func TestWMTUDPBackToBack(t *testing.T) {
	s := sim.New(1)
	var times []units.Time
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	srv := &WMTUDP{Sim: s, Enc: enc, Flow: 1,
		Next: packet.HandlerFunc(func(p *packet.Packet) {
			if p.FrameSeq == 0 {
				times = append(times, s.Now())
			}
		})}
	srv.Start()
	s.SetHorizon(units.FromSeconds(1))
	s.Run()
	if len(times) >= 2 {
		gap := times[1] - times[0]
		// At 10 Mbps host rate a 1500B packet takes 1.2 ms: bursty.
		if gap > 2*units.Millisecond {
			t.Errorf("inter-packet gap %v — WMT UDP should be back-to-back", gap)
		}
	}
}

func TestBurstFragmentsDatagramSemantics(t *testing.T) {
	s := sim.New(1)
	counts := map[int]int{}
	fragTotals := map[int]int{}
	enc := tiny(t, 1.7e6)
	srv := &Burst{Sim: s, Enc: enc, Flow: 1,
		Next: packet.HandlerFunc(func(p *packet.Packet) {
			counts[p.FrameSeq]++
			fragTotals[p.FrameSeq] = p.FragCount
		})}
	srv.Start()
	s.SetHorizon(units.FromSeconds(2))
	s.Run()
	for seq, n := range counts {
		if fragTotals[seq] != n {
			t.Fatalf("frame %d: sent %d fragments, declared %d", seq, n, fragTotals[seq])
		}
	}
}

// TestBurstAdaptationDeathSpiral reproduces the §4 narrative: policing
// losses plus low delay make the naive estimator RAISE its rate, which
// worsens the losses until it collapses and the cycle repeats.
func TestBurstAdaptationDeathSpiral(t *testing.T) {
	s := sim.New(7)
	enc := tiny(t, 1.0e6)
	received := 0
	// A crude inline policer: 1.1 Mbps, 3000B depth.
	var srv *Burst
	bucketRate := 1.1e6
	level := 3000.0
	last := units.Time(0)
	pol := packet.HandlerFunc(func(p *packet.Packet) {
		now := s.Now()
		level += bucketRate / 8 * (now - last).Seconds()
		last = now
		if level > 3000 {
			level = 3000
		}
		if level >= float64(p.Size) {
			level -= float64(p.Size)
			received++
		}
	})
	srv = &Burst{Sim: s, Enc: enc, Flow: 1, Next: pol, Adapt: true}
	sent := 0
	srv.SetFeedback(func() (float64, units.Time) {
		loss := 0.0
		if srv.Sent > sent {
			loss = 1 - float64(received)/float64(srv.Sent)
		}
		sent = srv.Sent
		return loss, 10 * units.Millisecond
	})
	srv.Start()
	s.SetHorizon(units.FromSeconds(70))
	s.Run()
	// The multiplier history must show both escalation above 1.5 and
	// collapse to 0.3 — the cycle the paper describes.
	var up, down bool
	for _, m := range srv.Multipliers {
		if m > 1.5 {
			up = true
		}
		if m <= 0.31 {
			down = true
		}
	}
	if !up || !down {
		t.Errorf("no death spiral: multipliers %v", srv.Multipliers[:min(len(srv.Multipliers), 20)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestWMTTCPThinsUnderBackpressure(t *testing.T) {
	s := sim.New(1)
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	// A sender whose output goes nowhere: ACKs never come back, so the
	// backlog grows and thinning must kick in.
	snd := tcpsim.NewSender(s, 1, packet.HandlerFunc(func(*packet.Packet) {}))
	asm := &client.StreamAssembler{}
	srv := &WMTTCP{Sim: s, Enc: enc, Sender: snd, Asm: asm}
	srv.Start()
	s.SetHorizon(units.FromSeconds(30))
	s.Run()
	if srv.FramesThinned == 0 {
		t.Error("no thinning despite a dead connection")
	}
	if srv.FramesSent+srv.FramesThinned == 0 {
		t.Error("nothing happened")
	}
}

func TestAdaptiveStepsDownOnLoss(t *testing.T) {
	s := sim.New(3)
	clip := video.Lost()
	encs := []*video.Encoding{
		video.EncodeCBR(clip, 0.5e6),
		video.EncodeCBR(clip, 1.0e6),
		video.EncodeCBR(clip, 1.5e6),
	}
	var sink packet.Sink
	srv := &Adaptive{Sim: s, Encs: encs, Flow: 1, Next: &sink}
	loss := 0.10
	srv.SetFeedback(func() float64 { return loss })
	srv.Start()
	if srv.Level() != 2 {
		t.Fatalf("must start at the top level, got %d", srv.Level())
	}
	s.RunUntil(units.FromSeconds(5))
	if srv.Level() != 0 {
		t.Errorf("level = %d after sustained loss, want 0", srv.Level())
	}
	loss = 0.0
	s.RunUntil(units.FromSeconds(15))
	if srv.Level() != 2 {
		t.Errorf("level = %d after loss cleared, want 2", srv.Level())
	}
	if srv.Switches < 4 {
		t.Errorf("switches = %d", srv.Switches)
	}
}
