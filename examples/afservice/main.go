// AF service: the Assured Forwarding experiment the paper deferred
// (§2.1 — "the results were heavily dependent on the level of cross
// traffic"). The video is srTCM-colored at the edge (never dropped
// there) and crosses a congested hop whose RIO queue discriminates by
// drop precedence. The same committed rate that is harmless in a quiet
// class becomes decisive in a busy one.
package main

import (
	"fmt"

	"repro/internal/experiment"
)

func main() {
	fmt.Println("Assured Forwarding (srTCM edge marking + RIO core), Lost @ 1.0 Mbps CBR")
	fmt.Println()
	pts := experiment.AblationAF(experiment.DefaultSeed)
	fmt.Println(experiment.FormatAF(pts))
	fmt.Println("Reading the table: with a lightly loaded AF class, even a stream")
	fmt.Println("marked one-third red streams perfectly — conformance is irrelevant.")
	fmt.Println("Under heavy in-class load, quality becomes a function of the CIR.")
	fmt.Println("This sensitivity is exactly why the paper kept AF out of scope.")
}
