// Local testbed: the Figs. 15–16 experiment pair — a Windows-Media-
// style capped-VBR stream through the three-router Frame Relay chain,
// with hard policing alone and with the Linux shaping router in front
// of it — showing why the paper concludes that a slightly larger EF
// bucket (or a shaper) matters so much more for bursty servers.
package main

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/units"
	"repro/internal/video"
)

func main() {
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	max, avg, _ := enc.RateStats()
	fmt.Printf("WMV encoding: cap %.1f kbps, measured avg %.0f bps, max %.0f bps\n\n",
		video.WMVCapKbps, avg, max)

	tokens := experiment.Scale(experiment.TokenSweep(500, 2500, 200), 2)

	fmt.Println("-- Drop policing only (Figure 15) --")
	fmt.Printf("%-10s %-22s %-22s\n", "Token", "B=3000 (loss / QI)", "B=4500 (loss / QI)")
	for _, tok := range tokens {
		p3 := experiment.RunLocalPoint(enc, tok, 3000, false, false, experiment.DefaultSeed)
		p45 := experiment.RunLocalPoint(enc, tok, 4500, false, false, experiment.DefaultSeed)
		fmt.Printf("%-10v %6.3f / %-13.3f %6.3f / %-13.3f\n",
			tok, p3.FrameLoss, p3.Quality, p45.FrameLoss, p45.Quality)
	}

	fmt.Println("\n-- Linux shaper ahead of the policer (Figure 16) --")
	fmt.Printf("%-10s %-22s %-22s\n", "Token", "B=3000 (loss / QI)", "B=4500 (loss / QI)")
	for _, tok := range tokens {
		p3 := experiment.RunLocalPoint(enc, tok, 3000, true, false, experiment.DefaultSeed)
		p45 := experiment.RunLocalPoint(enc, tok, 4500, true, false, experiment.DefaultSeed)
		fmt.Printf("%-10v %6.3f / %-13.3f %6.3f / %-13.3f\n",
			tok, p3.FrameLoss, p3.Quality, p45.FrameLoss, p45.Quality)
	}

	fmt.Println("\nNote how with drop policing B=3000 never reaches quality 0 even at")
	fmt.Println("2.5x the encoding cap, while shaping (or one extra MTU of depth)")
	fmt.Println("recovers near-perfect quality at moderate token rates — §4.2.")
}
