// QBone sweep: regenerate a compact version of Figure 7 — video
// quality and frame loss versus token rate for both bucket depths —
// and print the two findings the paper draws from it: the nonlinear
// quality/loss relation, and average-rate sufficiency at B=4500.
package main

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/units"
)

func main() {
	spec := experiment.Figure7Spec()
	// Half resolution keeps this example under a minute.
	spec.Tokens = experiment.Scale(spec.Tokens, 2)
	fig := spec.Run()
	fmt.Println(fig.Format())

	// Pull out the two headline observations.
	var b3, b45 []experiment.Point
	for _, s := range fig.Series {
		switch s.Label {
		case "B=3000":
			b3 = s.Points
		case "B=4500":
			b45 = s.Points
		}
	}
	avgRate := 1.7 * units.Mbps
	closest := func(pts []experiment.Point, r units.BitRate) experiment.Point {
		best := pts[0]
		for _, p := range pts {
			if abs(float64(p.TokenRate-r)) < abs(float64(best.TokenRate-r)) {
				best = p
			}
		}
		return best
	}
	pAvg3 := closest(b3, avgRate)
	pAvg45 := closest(b45, avgRate)
	fmt.Printf("At the average encoding rate (%v):\n", avgRate)
	fmt.Printf("  B=3000: quality %.3f   B=4500: quality %.3f\n", pAvg3.Quality, pAvg45.Quality)
	fmt.Printf("  -> one extra MTU of bucket depth buys %.3f quality index\n\n",
		pAvg3.Quality-pAvg45.Quality)

	last3 := b3[len(b3)-1]
	fmt.Printf("B=3000 needs ≈ the max encoding rate: quality %.3f at %v\n",
		last3.Quality, last3.TokenRate)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
