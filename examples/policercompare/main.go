// Policer comparison: three ablations the paper motivates but could
// not (or chose not to) run on its testbeds:
//
//  1. drop-policing vs shaping at the QBone border, at every depth;
//  2. the large-datagram server's rate-adaptation death spiral behind
//     an EF policer (§4 narrative, reproduced live);
//  3. a multi-rate "intelligent streaming" server that treats loss as
//     congestion and steps down instead of up.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/client"
	"repro/internal/experiment"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/tokenbucket"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

func main() {
	scenario := flag.String("scenario", "", "run a registered figure scenario instead of the ablations")
	parallel := flag.Int("parallel", 0, "worker-pool size for the simulation grids (0 = all cores)")
	flag.Parse()

	if *scenario != "" {
		s := experiment.Lookup(*scenario)
		if s == nil {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (known: %s)\n",
				*scenario, strings.Join(experiment.Names(), ", "))
			os.Exit(2)
		}
		fmt.Print(experiment.RunScenario(s, *parallel).Format())
		return
	}
	dropVsShape(*parallel)
	deathSpiral()
	adaptive()
}

func dropVsShape(parallel int) {
	fmt.Println("== 1. Drop vs shape at the QBone border (Lost @ 1.7M) ==")
	enc := video.CachedCBR(video.Lost(), 1.7*units.Mbps)
	fmt.Printf("%-10s %-8s %-14s %-14s\n", "Token", "Depth", "drop: QI", "shape: QI")
	type cell struct {
		tok   units.BitRate
		depth units.ByteSize
		shape bool
	}
	var cells []cell
	for _, tok := range []units.BitRate{1.6e6, 1.75e6, 1.9e6} {
		for _, depth := range []units.ByteSize{3000, 4500} {
			cells = append(cells, cell{tok, depth, false}, cell{tok, depth, true})
		}
	}
	// The whole grid fans out on the runner; results come back in cell
	// order, so the table prints identically at every -parallel value.
	jobs := make([]func() float64, len(cells))
	for i, c := range cells {
		c := c
		jobs[i] = func() float64 {
			q := topology.BuildQBone(topology.QBoneConfig{
				Seed: experiment.DefaultSeed, Enc: enc,
				TokenRate: c.tok, Depth: c.depth, Shape: c.shape,
			})
			q.Client.Tolerance = client.SliceTolerance
			q.Run()
			return experiment.Evaluate(q.Client.Trace(), enc, enc).Quality
		}
	}
	quality := runner.Map(parallel, jobs)
	for i := 0; i < len(cells); i += 2 {
		fmt.Printf("%-10v %-8d %-14.3f %-14.3f\n",
			cells[i].tok, int64(cells[i].depth), quality[i], quality[i+1])
	}
	fmt.Println()
}

func deathSpiral() {
	fmt.Println("== 2. Large-datagram server adaptation behind an EF policer ==")
	s := sim.New(experiment.DefaultSeed)
	enc := video.EncodeCBR(video.Lost(), 1.0*units.Mbps)
	cl := client.NewUDP(s, enc.Clip.FrameCount())
	pol := tokenbucket.NewPolicer(s, 1.3*units.Mbps, 3000, packet.EF, cl)
	srv := &server.Burst{Sim: s, Enc: enc, Flow: 1, Next: pol, Adapt: true}
	lastRecv, lastSent := 0, 0
	srv.SetFeedback(func() (float64, units.Time) {
		recv, sent := cl.Packets, srv.Sent
		loss := 0.0
		if sent > lastSent {
			loss = 1 - float64(recv-lastRecv)/float64(sent-lastSent)
		}
		lastRecv, lastSent = recv, sent
		if loss < 0 {
			loss = 0
		}
		return loss, 10 * units.Millisecond
	})
	srv.Start()
	s.SetHorizon(units.FromSeconds(enc.Clip.DurationSeconds() + 5))
	s.Run()
	fmt.Println("rate multiplier over time (1.0 = nominal; the estimator reads")
	fmt.Println("policing loss + low delay as 'send faster'):")
	for i, m := range srv.Multipliers {
		if i%5 == 0 {
			fmt.Printf("  t=%2ds multiplier=%.2f\n", i+1, m)
		}
	}
	fmt.Printf("policer loss: %.1f%%; frames delivered: %d of %d\n\n",
		100*pol.LossFraction(), len(cl.Finish().Records), enc.Clip.FrameCount())
}

func adaptive() {
	fmt.Println("== 3. Multi-rate adaptive server (steps DOWN on loss) ==")
	s := sim.New(experiment.DefaultSeed)
	clip := video.Lost()
	encs := []*video.Encoding{
		video.EncodeCBR(clip, 0.7e6),
		video.EncodeCBR(clip, 1.0e6),
		video.EncodeCBR(clip, 1.5e6),
	}
	cl := client.NewUDP(s, clip.FrameCount())
	cl.Tolerance = client.SliceTolerance
	pol := tokenbucket.NewPolicer(s, 1.15*units.Mbps, 4500, packet.EF, cl)
	srv := &server.Adaptive{Sim: s, Encs: encs, Flow: 1, Next: pol}
	lastRecv, lastSent := 0, 0
	srv.SetFeedback(func() float64 {
		recv, sent := cl.Packets, srv.Sent
		loss := 0.0
		if sent > lastSent {
			loss = 1 - float64(recv-lastRecv)/float64(sent-lastSent)
		}
		lastRecv, lastSent = recv, sent
		if loss < 0 {
			loss = 0
		}
		return loss
	})
	srv.Start()
	s.SetHorizon(units.FromSeconds(clip.DurationSeconds() + 5))
	s.Run()
	fmt.Printf("final level: %d (%v); switches: %d\n",
		srv.Level(), encs[srv.Level()].Target, srv.Switches)
	hist := map[int]int{}
	for _, l := range srv.Levels {
		hist[l]++
	}
	for l, n := range hist {
		fmt.Printf("  level %d (%v): %d s\n", l, encs[l].Target, n)
	}
	tr := cl.Finish()
	fmt.Printf("frame delivery: %d of %d (loss %.2f%%) — the stream converged to\n",
		len(tr.Records), clip.FrameCount(), 100*tr.FrameLossFraction())
	fmt.Println("the largest encoding below the token rate, the paper's rule of thumb.")
}
