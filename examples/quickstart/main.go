// Quickstart: stream one video clip across the simulated QBone behind
// an EF policer and measure the perceived quality — the paper's core
// experiment in ~40 lines.
package main

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/experiment"
	"repro/internal/render"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
	"repro/internal/vqm"
)

func main() {
	// 1. Content: the "Lost" trailer, MPEG-1 CBR at 1.7 Mbps.
	clip := video.Lost()
	enc := video.EncodeCBR(clip, 1.7*units.Mbps)
	max, avg, min := enc.RateStats()
	fmt.Printf("clip %s: %d frames, %.2f s\n", clip.Name, clip.FrameCount(), clip.DurationSeconds())
	fmt.Printf("encoding: avg %.0f bps (max %.0f, min %.0f)\n\n", avg, max, min)

	// 2. Network: the wide-area testbed with an EF profile of
	//    1.8 Mbps / 3000 bytes, dropping out-of-profile packets.
	q := topology.BuildQBone(topology.QBoneConfig{
		Seed:      experiment.DefaultSeed,
		Enc:       enc,
		TokenRate: 1.8 * units.Mbps,
		Depth:     3000,
	})
	q.Client.Tolerance = client.SliceTolerance

	// 3. Stream the whole clip.
	q.Run()
	fmt.Printf("policer: %d passed, %d dropped (%.2f%% packet loss)\n",
		q.Policer.Passed, q.Policer.Dropped, 100*q.Policer.LossFraction())

	// 4. Offline measurement pipeline: decode dependencies, renderer
	//    concealment, VQM scoring — exactly §3.1 of the paper.
	tr := client.DecodeMPEG(q.Client.Trace(), enc)
	displayed := render.Conceal(tr, render.DefaultOptions())
	result := vqm.ScoreSame(displayed, enc, vqm.Options{})

	fmt.Printf("frame loss: %.2f%%\n", 100*tr.FrameLossFraction())
	fmt.Printf("freezes: %d slots (longest %d)\n", displayed.Repeats, displayed.LongestFreeze())
	fmt.Printf("VQM quality index: %.3f (0 = perfect, 1 = worst)\n", result.Index)
}
