// Package repro reproduces "On the Impact of Policing and Rate
// Guarantees in Diff-Serv Networks: A Video Streaming Application
// Perspective" (Ashmawi, Guérin, Wolf, Pinson — SIGCOMM 2001) as a
// deterministic packet-level simulation study in pure Go.
//
// The library lives under internal/: a discrete-event simulator (sim —
// pooled events on a calendar-queue scheduler, with a closure-free
// Timer API beside the At/After closures), the DiffServ data plane
// (packet, tokenbucket, queue, link, node — with strict-priority, DRR,
// WFQ and RED/RIO schedulers behind one per-class-accounted Scheduler
// interface), traffic sources (traffic),
// the video content and encoder models (video), streaming servers
// (server, tcpsim), the instrumented client and renderer-concealment
// pipeline (client, render, trace), the objective quality model (vqm),
// the declarative network-graph builder with the paper testbeds as
// presets (topology) and the measurement harness that regenerates
// every table and figure of the paper (experiment).
//
// Figures are modelled as named scenarios (experiment.Scenario) and
// executed on a deterministic worker pool (runner) that keeps output
// byte-identical at every parallelism level. Beyond the paper's
// figures, the registry carries scaling scenarios (N competing flows,
// bottleneck-scheduler comparison, tandem policed borders, and the
// flow-batched nflow-wide sweep to hundreds of virtual flows) built
// on the topology builder.
//
// Identical paced flows are batched (flowbatch): one representative
// emission schedule per equivalence class — same encoding, rate and
// packet sizing — cached and fanned out as N phase-offset virtual
// flows by a single source that folds the per-flow access link
// (exact serialization emulation) and campus jitter (root-RNG draws
// in global arrival order) into itself. Virtual flows keep distinct
// flow ids, policers, taps and per-flow statistics, and a batched
// build is byte-identical to N real servers — pinned by the
// differential harness in internal/experiment — while paying the
// source-side cost once; the fold is exact for the multi-flow
// topology and unavailable for random (Poisson/on-off) sources. This
// is what lets the nflow-wide scenario sweep N ∈ {16..512} with
// events per virtual flow falling as N grows.
//
// One big run can additionally be sharded across workers ("dsbench
// -shards K", MultiFlowConfig.Shards / TandemConfig.Shards) with
// byte-identical output. Sources partition round-robin into K shards
// — batched virtual flows advance as time-shifted replays of one
// shared base arrival sequence (flowbatch.BaseArrivals; the
// access-chain recurrence is shift-invariant), unbatched chains clone
// server+access-link onto shard-private simulators — and advance
// under a conservative lookahead window derived from the minimum
// latency of the access chain feeding the shared border, which is
// sound because the topologies are feed-forward. A central sequencer
// draws the root-RNG jitter stream at exactly the serial positions,
// and the border simulator replays shard emissions in exact global
// (time, flow) order, firing its own events strictly before each
// emission instant, so figures, per-flow statistics, policer
// verdicts and the merged packet trace are bit-equal to the serial
// run at every shard count — pinned by the shardeq differential
// harness in internal/experiment and internal/topology. Unlike flow
// batching, sharding has no large-N divergence boundary.
//
// Heterogeneous populations batch as mixtures
// (flowbatch.BatchedMixture, MultiFlowConfig.Classes): K equivalence
// classes — each with its own cached schedule, encoding, access
// chain, policing profile, phase and stagger — fan out class-major
// into one interleaved emission stream in exact global (time, flow)
// order, so the batching contract and both differential harnesses
// extend to mixtures unchanged (mixeq harness in
// internal/experiment), serially and sharded. Six-figure fleets pair
// this with aggregated statistics (MultiFlowConfig.AggregateStats):
// one client.Aggregate per class — delivered counts, streaming delay
// moments, fixed-size P² quantile sketches — keeps receive-side
// memory and figure assembly O(classes) instead of O(flows), at the
// price of frame-level semantics. The nflow-fleet scenario sweeps
// such a mixture to N = 200,000 virtual flows across the
// bottleneck's provisioning knee, recording events per virtual flow
// falling and bytes per virtual flow ~flat as N grows
// (BENCH_PR7.json).
//
// The event queue tunes itself: the calendar's bucket width adapts to
// the mean firing spacing the queue serves, re-derived only at window
// rebases (where the lattice is provably empty) with power-of-two
// targets, clamps and two-level hysteresis, so dense fleets converge
// onto narrow buckets and sparse cancel-heavy TCP timer schedules
// onto wide ones with zero effect on firing order — event order, and
// output, stay width-invariant at every geometry, and rebases also
// compact cancel-storm dead weight out of the overflow heap. A
// positive width (sim.NewWithBucketWidth, the topology configs'
// BucketWidth, "dsbench -bucket-width") pins the geometry and
// disables adaptation; per-run telemetry (rebases, final width,
// overflow ratio) rides on experiment.Point into "dsbench -json",
// and BENCH_PR8.json records the bake-off — the adaptive policy
// tracks the best hand-tuned width per workload and retires the
// fleet's per-N width heuristic.
//
// Below the frame layer, the packet tracing subsystem (ptrace) makes
// the datapath observable: every component carries a nil-by-default
// Tap emitting compact value-type events — link enqueue/tx/deliver,
// queue and AQM drops, policer and marker verdicts, shaper releases,
// client deliveries with one-way delay, TCP send/ACK/RTO — into a
// bounded per-run Recorder (ring + head pinning + sampling + kind and
// flow filters). Disabled tracing is a pointer comparison per tap
// point and the hot paths keep their zero-allocation budget; enabled
// tracing writes into preallocated storage. Traces export in two
// sniffed-on-read formats — versioned JSONL and the ~5×-denser
// delta-packed binary v2, whose trailer-placed totals let the
// Recorder spill a complete filtered capture to disk during the run
// ("dsbench -trace DIR -trace-spill"), unbounded by the in-RAM ring
// and atomically published. cmd/dstrace summarizes either format in
// one bounded-memory streaming pass (counts, Welford moments and P²
// sketches per hop and flow, never the event slice): per-hop drop and
// residence-delay breakdown, policer verdict timelines, per-flow
// latency percentiles, frame-loss attribution by joining against the
// client's frame trace, and behavioral regression diffing ("dstrace
// -compare a.ptrace b.ptrace"), which joins two runs' digests into a
// per-hop/per-flow delta table and exits non-zero on a threshold
// breach — a CI gate for drift the figure goldens summarize away.
//
// Scenarios are also data: internal/scenfile compiles versioned JSON
// scenario files into the same experiment.Scenario registry the Go
// presets live in ("dsbench -scenario-file FILE"). Preset shapes
// (multiflow, fleet, tandem) mirror the sweep specs field for field —
// checked-in files re-expressing nflow and tandem are pinned
// byte-identical to their Go twins, figures, per-flow stats and
// canonicalized packet traces alike — and the graph shape describes
// arbitrary element topologies compiled straight onto the topology
// builder, so workloads like the dumbbell (two edge bottlenecks, a
// shared core, cross-directional EF video) exist only as config
// files. Validation rejects malformed files up front with errors that
// name the offending field, and declared capabilities gate -shards /
// -bucket-width. Config-file-only workloads are pinned by digest
// goldens: "dsbench -trace-digest" writes a behavioral summary
// (.digest) beside each sealed trace and "dstrace -compare-golden
// GOLDEN.digest RUN.ptrace" gates a run against the stored baseline.
//
// The per-packet hot paths are allocation-free: packet.Handler.Handle
// takes ownership of its packet ("forward it, hold it, or terminate
// it and release it to the packet.Pool"), every terminal path
// releases, and each runner worker owns a persistent pool arena so
// arenas never cross goroutines. See the packet and sim package
// comments for the two contracts (packet ownership; Timer scheduling
// and generation-checked event Handles).
//
// Entry points: cmd/dsbench regenerates all artifacts, cmd/dsstream
// runs one experiment, cmd/vqmtool scores stored frame traces,
// cmd/dstrace analyzes packet traces, and examples/ holds runnable
// walkthroughs. bench_test.go in this directory carries one benchmark
// per paper artifact.
//
// See README.md for the repository layout, the scenario registry, and
// the verification commands.
package repro
