// Package repro reproduces "On the Impact of Policing and Rate
// Guarantees in Diff-Serv Networks: A Video Streaming Application
// Perspective" (Ashmawi, Guérin, Wolf, Pinson — SIGCOMM 2001) as a
// deterministic packet-level simulation study in pure Go.
//
// The library lives under internal/: a discrete-event simulator (sim),
// the DiffServ data plane (packet, tokenbucket, queue, link, node),
// traffic sources (traffic), the video content and encoder models
// (video), streaming servers (server, tcpsim), the instrumented client
// and renderer-concealment pipeline (client, render, trace), the
// objective quality model (vqm), the two testbeds (topology) and the
// measurement harness that regenerates every table and figure of the
// paper (experiment).
//
// Figures are modelled as named scenarios (experiment.Scenario) and
// executed on a deterministic worker pool (runner) that keeps output
// byte-identical at every parallelism level.
//
// Entry points: cmd/dsbench regenerates all artifacts, cmd/dsstream
// runs one experiment, cmd/vqmtool scores stored traces, and
// examples/ holds runnable walkthroughs. bench_test.go in this
// directory carries one benchmark per paper artifact.
//
// See README.md for the repository layout, the scenario registry, and
// the verification commands.
package repro
